// Command ctbench regenerates every table and figure of the paper's
// evaluation (plus the repository's ablations) on the simulator.
//
// Usage:
//
//	ctbench -exp all          # every experiment, paper-scale sizes
//	ctbench -exp fig7a        # one experiment
//	ctbench -exp fig2,fig9    # a comma-separated list
//	ctbench -quick            # shrunken sizes for a fast smoke run
//	ctbench -list             # list experiment IDs
//	ctbench -parallel 0       # 0 (the default) = one worker per CPU
//	                          # (runtime.GOMAXPROCS); 1 = serial; N>1 =
//	                          # exactly N workers. Tables are
//	                          # byte-identical at every setting.
//	ctbench -cache rw         # content-addressed result cache:
//	                          # off (default) = always simulate,
//	                          # rw = serve hits + store fresh results,
//	                          # ro = serve hits, never write,
//	                          # clear = empty the cache (results and
//	                          # traces) and exit. A rw cache also prunes
//	                          # entries from older simulator versions at
//	                          # startup.
//	ctbench -cachedir DIR     # cache location (default
//	                          # ~/.cache/ctbia/results)
//	ctbench -trace off        # trace-replay engine: on (default) =
//	                          # record each simulation point's operation
//	                          # stream once and replay repeats through
//	                          # the batched interpreter; record-only =
//	                          # record but never replay; off = always
//	                          # simulate from scratch
//	ctbench -tracedir DIR     # persist traces to DIR (default: the
//	                          # traces/ subdirectory of the cache dir
//	                          # when -cache rw, else in-memory only)
//	ctbench -fanout=false     # disable fan-out replay: grouped sweeps
//	                          # (geosweep) decode the shared stream once
//	                          # per machine config instead of once per
//	                          # group. Tables are byte-identical either
//	                          # way — only wall time and decode-pass
//	                          # counts move
//	ctbench -resume           # with -cache rw: consult the manifest
//	                          # journal from a previous (possibly
//	                          # crashed or partially failed) run and
//	                          # re-run only missing or failed
//	                          # experiments; completed ones are served
//	                          # from the cache
//	ctbench -manifest-batch N # with -cache rw: commit the manifest
//	                          # journal after N buffered outcomes
//	                          # (default 32; 1 = commit every record).
//	                          # A crash loses at most N-1 uncommitted
//	                          # outcomes — -resume re-runs only those.
//	ctbench -manifest-flushms MS
//	                          # deadline for buffered manifest entries:
//	                          # commit after MS milliseconds even if the
//	                          # batch is not full (default 500)
//	ctbench -faults SPEC      # arm deterministic fault injection (same
//	                          # grammar as the CTBIA_FAULTS env var),
//	                          # e.g. 'seed=1; worker.panic@1' — chaos
//	                          # testing only
//	ctbench -json out.json    # machine-readable results: per-experiment
//	                          # wall time, machine counts, cache hits
//	                          # and table rows
//	ctbench -benchjson b.json # run the perf snapshot suite (serial +
//	                          # parallel wall time, allocs/op on the
//	                          # core paths, cache-hit re-run time) and
//	                          # write it as JSON
//	ctbench -timeline t.json  # arm the observability layer and write a
//	                          # Chrome trace-event timeline of every
//	                          # harness phase (open in Perfetto or
//	                          # chrome://tracing)
//	ctbench -listen :8080     # serve live introspection while the sweep
//	                          # runs: /metrics (Prometheus text, with
//	                          # p50/p95/p99 summaries per histogram),
//	                          # /metrics.json, /progress, /healthz
//	                          # (200 serving, 503 draining),
//	                          # /debug/vars (expvar) and /debug/pprof
//	ctbench -serve :9090      # coordinate a distributed sweep: shard
//	                          # the selected experiments into leased
//	                          # work units served over HTTP/JSON (plus
//	                          # the introspection endpoints above and
//	                          # a GET /fleet report of worker liveness,
//	                          # lease ages, points/sec and metric lag)
//	                          # and merge worker results — tables,
//	                          # metric deltas and timeline spans, so
//	                          # /metrics and -json report fleet-wide
//	                          # totals; falls back to
//	                          # in-process execution if no worker joins
//	                          # (or all of them die), so the sweep
//	                          # always finishes. Composes with -cache,
//	                          # -resume and -json exactly like a local
//	                          # run
//	ctbench -worker URL       # join the coordinator at URL, lease work
//	                          # units, execute them and upload tables
//	                          # until the sweep is done. -quick is
//	                          # dictated by the coordinator; -cache/
//	                          # -json/-exp do not apply
//	ctbench -fleet-lease-ms N # coordinator: per-unit execution
//	                          # deadline before a lease re-queues
//	                          # (default 60000)
//	ctbench -fleet-joinwait-ms N
//	                          # coordinator: how long to wait for a
//	                          # first worker before draining the sweep
//	                          # in-process (default 3000)
//	ctbench -progress         # print a progress line with ETA to stderr
//	                          # every few seconds (long sweeps)
//	ctbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ctbia/internal/cpu"
	"ctbia/internal/faultinject"
	"ctbia/internal/fleet"
	"ctbia/internal/harness"
	"ctbia/internal/obs"
	"ctbia/internal/resultcache"
)

// jsonExperiment is one experiment's record in the -json report.
type jsonExperiment struct {
	ID       string     `json:"id"`
	Title    string     `json:"title"`
	WallMS   float64    `json:"wall_ms"`
	Machines uint64     `json:"machines"`
	Cached   bool       `json:"cached,omitempty"`
	Failed   bool       `json:"failed,omitempty"`
	Errors   []string   `json:"errors,omitempty"`
	Headers  []string   `json:"headers,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Notes    []string   `json:"notes,omitempty"`
	// Metrics is the experiment's observability delta (BIA lines
	// skipped, per-level cache stats, probe outcomes, ...) — attribution
	// is exact in serial runs, approximate under parallelism.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
}

// jsonReport is the -json file layout. "machines" counts simulated
// machine uses (fresh builds + pool resets — pooling recycles machines,
// so builds alone undercount scale); the split is reported alongside.
// Per-experiment machine counts are exact in serial runs; in parallel
// runs the attribution windows overlap, but the run-level total stays
// exact — trajectory tooling should trend the totals and the
// per-experiment wall times.
type jsonReport struct {
	Created        string  `json:"created"`
	Quick          bool    `json:"quick"`
	Parallel       int     `json:"parallel"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	WallMS         float64 `json:"wall_ms"`
	Machines       uint64  `json:"machines"`
	MachinesBuilt  uint64  `json:"machines_built"`
	MachinesReused uint64  `json:"machines_reused"`
	CacheMode      string  `json:"cache_mode"`
	CacheHits      int     `json:"cache_hits"`
	CacheDir       string  `json:"cache_dir,omitempty"`
	TraceMode      string  `json:"trace_mode"`
	TraceRecords   uint64  `json:"trace_records"`
	TraceReplays   uint64  `json:"trace_replays"`
	// TraceSharedReplays counts replays served from a recording made
	// under a different machine config (the sweep-level sharing win);
	// TraceStaleFormat counts v1-format files transparently re-recorded.
	TraceSharedReplays uint64 `json:"trace_shared_replays"`
	TraceStaleFormat   uint64 `json:"trace_stale_format"`
	// TraceFanoutReplays counts fan-out passes (one per served group);
	// TraceDecodePasses counts full decode passes over stored streams —
	// under fan-out, one per distinct trace key touched, not one per
	// replay served.
	TraceFanoutReplays uint64 `json:"trace_fanout_replays"`
	TraceDecodePasses  uint64 `json:"trace_decode_passes"`
	// Provenance stamps the producing toolchain and configuration so a
	// result file is self-describing for trajectory tooling.
	Provenance harness.Provenance `json:"provenance"`
	// Metrics is the run-level observability snapshot (superset of the
	// per-experiment deltas; exact at every worker count).
	Metrics map[string]uint64 `json:"metrics,omitempty"`
	// Fleet is the distributed-sweep accounting (leases, heartbeats,
	// dedup hits, fallback units) — present only under -serve.
	Fleet map[string]uint64 `json:"fleet,omitempty"`
	// FleetWorkers is the per-worker fleet report (units, points,
	// clock offset, metric lag) — present only under -serve once a
	// worker has joined.
	FleetWorkers []fleet.WorkerReport `json:"fleet_workers,omitempty"`
	Experiments  []jsonExperiment     `json:"experiments"`
}

// cleanup drains the journal and cache sinks before an early exit;
// main replaces it once those sinks exist (os.Exit skips defers).
var cleanup = func() {}

func fatal(err error) {
	cleanup()
	fmt.Fprintln(os.Stderr, "ctbench: ", err)
	os.Exit(1)
}

// usageErr reports a bad flag value or impossible flag combination and
// exits 2, so scripts can tell misuse (2) from run failures (1).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctbench: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	exp := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", 0, "worker count for experiments and sweep points (0: one per CPU, 1: serial)")
	cacheMode := flag.String("cache", "off", "result cache mode: off, rw (read+write), ro (read-only) or clear (empty the cache and exit)")
	cacheDir := flag.String("cachedir", "", "result cache directory (default ~/.cache/ctbia/results)")
	traceMode := flag.String("trace", "on", "trace-replay engine: on, off or record-only")
	fanout := flag.Bool("fanout", true, "fan-out trace replay: charge every machine config of a grouped sweep from one decode pass per shared stream (false: serial per-config replay; tables are byte-identical either way)")
	traceDir := flag.String("tracedir", "", "trace persistence directory (default <cachedir>/traces when -cache rw)")
	resume := flag.Bool("resume", false, "resume a previous -cache rw run from its manifest journal (re-runs only missing or failed experiments)")
	manifestBatch := flag.Int("manifest-batch", harness.DefaultManifestBatch, "manifest journal batch: buffered outcomes per commit (1 = commit every record)")
	manifestFlushMS := flag.Int("manifest-flushms", int(harness.DefaultManifestFlushInterval/time.Millisecond), "manifest journal deadline flush, in milliseconds")
	faults := flag.String("faults", "", "arm deterministic fault injection, e.g. 'seed=1; worker.panic@1' (chaos testing)")
	jsonOut := flag.String("json", "", "write a machine-readable result file (wall times, machine counts, cache hits, table rows)")
	benchJSON := flag.String("benchjson", "", "run the perf snapshot suite and write it to this file")
	timelineOut := flag.String("timeline", "", "write a Chrome trace-event timeline of harness phases to this file (open in Perfetto or chrome://tracing)")
	listen := flag.String("listen", "", "serve live introspection on this address during the run (/metrics, /metrics.json, /progress, /debug/vars, /debug/pprof)")
	serve := flag.String("serve", "", "coordinate a distributed sweep on this address: shard experiments into leased work units for -worker processes, merging their tables (falls back to in-process execution if no worker joins)")
	workerURL := flag.String("worker", "", "join the fleet coordinator at this URL, lease work units and upload results until the sweep is done")
	fleetLeaseMS := flag.Int("fleet-lease-ms", 60000, "coordinator: per-unit execution deadline in milliseconds before a lease re-queues")
	fleetJoinWaitMS := flag.Int("fleet-joinwait-ms", 3000, "coordinator: milliseconds to wait for a first worker before draining the sweep in-process")
	progress := flag.Bool("progress", false, "print a progress line with ETA to stderr during the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// The flag line feeds the provenance stamp in the manifest and -json
	// report (flag.Visit walks set flags in lexical order, so the line
	// is deterministic for a given invocation).
	var setFlags []string
	flag.Visit(func(f *flag.Flag) {
		setFlags = append(setFlags, "-"+f.Name+"="+f.Value.String())
	})
	flagLine := strings.Join(setFlags, " ")

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// Bad flag values are usage errors (exit 2, no stack trace) — the
	// sweep must only start once every knob is known-good.
	if *parallel < 0 {
		usageErr("-parallel %d: worker count cannot be negative", *parallel)
	}
	if *serve != "" && *workerURL != "" {
		usageErr("-serve and -worker are mutually exclusive: a process coordinates or executes, not both")
	}
	if *fleetLeaseMS < 1 {
		usageErr("-fleet-lease-ms %d: need a positive lease deadline", *fleetLeaseMS)
	}
	if *fleetJoinWaitMS < 1 {
		usageErr("-fleet-joinwait-ms %d: need a positive join deadline", *fleetJoinWaitMS)
	}
	if *serve != "" && *benchJSON != "" {
		usageErr("-serve and -benchjson are mutually exclusive: the perf snapshot is a local measurement")
	}
	if *workerURL != "" {
		// A worker executes what it is told and uploads; selection,
		// caching, journaling and reporting all live on the coordinator.
		if *exp != "all" {
			usageErr("-worker ignores -exp: the coordinator decides what runs")
		}
		if *cacheMode != "off" {
			usageErr("-worker does not take -cache: the coordinator owns the result cache")
		}
		if *resume {
			usageErr("-worker does not take -resume: resuming happens on the coordinator")
		}
		if *jsonOut != "" || *benchJSON != "" {
			usageErr("-worker does not produce reports: run -json on the coordinator")
		}
	}
	if err := cpu.DefaultConfig().Validate(); err != nil {
		// Can only trip if the default machine config is edited into an
		// impossible geometry; catch it before any experiment panics.
		usageErr("machine config: %v", err)
	}

	// -cache clear is an action, not a mode: empty the store and exit.
	if *cacheMode == "clear" {
		store, err := resultcache.Open(*cacheDir, resultcache.ReadWrite, "")
		if err != nil {
			fatal(err)
		}
		n, err := store.Clear()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cleared %d cached entries from %s\n", n, store.Dir())
		return
	}

	mode, err := resultcache.ParseMode(*cacheMode)
	if err != nil {
		usageErr("%v", err)
	}
	tmode, err := harness.ParseTraceMode(*traceMode)
	if err != nil {
		usageErr("%v", err)
	}
	if *resume && mode != resultcache.ReadWrite {
		usageErr("-resume needs -cache rw: the result cache is what lets completed experiments be skipped")
	}
	if *manifestBatch < 1 {
		usageErr("-manifest-batch %d: need at least 1 outcome per commit", *manifestBatch)
	}
	if *manifestFlushMS < 1 {
		usageErr("-manifest-flushms %d: need a positive deadline", *manifestFlushMS)
	}
	if *faults != "" {
		inj, err := faultinject.Parse(*faults)
		if err != nil {
			usageErr("%v", err)
		}
		faultinject.Arm(inj)
	}
	if mode == resultcache.ReadWrite {
		dir := *cacheDir
		if dir == "" {
			dir = resultcache.DefaultDir()
		}
		if err := resultcache.EnsureWritable(dir); err != nil {
			usageErr("-cachedir: %v", err)
		}
	}
	if *traceDir != "" {
		if tmode == harness.TraceOff {
			usageErr("-tracedir is meaningless with -trace off")
		}
		if err := resultcache.EnsureWritable(*traceDir); err != nil {
			usageErr("-tracedir: %v", err)
		}
	}

	// Opening with the simulator version salt prunes entries stored by
	// older simulator versions (they could never be served again).
	store, err := resultcache.Open(*cacheDir, mode, harness.SimVersionSalt)
	if err != nil {
		fatal(err)
	}
	if store.Pruned() > 0 {
		fmt.Fprintf(os.Stderr, "ctbench: pruned %d stale cache entries (simulator version changed)\n", store.Pruned())
	}
	// Parallel workers save results concurrently; coalesce them into
	// grouped commits off the workers' critical path. RunAll flushes at
	// the end of the sweep and Close drains on every exit below.
	store.EnableWriteBehind()

	harness.SetTraceMode(tmode)
	harness.SetTraceFanout(*fanout)
	// Persist traces next to the result cache when it is writable, or
	// wherever -tracedir points; otherwise traces stay in memory.
	tdir := *traceDir
	if tdir == "" && store.Mode() == resultcache.ReadWrite {
		tdir = filepath.Join(store.Dir(), resultcache.TracesSubdir)
	}
	if tmode != harness.TraceOff && tdir != "" {
		if err := harness.SetTraceDir(tdir); err != nil {
			fatal(err)
		}
	}

	// Observability. The instrumented layers cost one atomic load per
	// probe while disarmed, so the registry arms only when something
	// will actually read it: a -json report, a timeline, a live
	// endpoint or a progress line.
	if *jsonOut != "" || *timelineOut != "" || *listen != "" || *progress {
		obs.Arm()
	}
	obs.RegisterSource(store.EmitMetrics)
	var timelineFile *os.File
	if *timelineOut != "" {
		f, err := os.Create(*timelineOut)
		if err != nil {
			usageErr("-timeline: %v", err)
		}
		timelineFile = f
		obs.EnableTimeline()
	}
	var listenSrv *obs.Server
	if *listen != "" {
		srv, err := obs.Serve(*listen)
		if err != nil {
			usageErr("-listen: %v", err)
		}
		listenSrv = srv
		defer listenSrv.Close()
		fmt.Fprintf(os.Stderr, "ctbench: live introspection on http://%s/metrics (also /metrics.json, /progress, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	stopProgress := func() {}
	if *progress {
		stopProgress = obs.StartProgress(os.Stderr, 2*time.Second)
	}

	// A writable cache gets a manifest journal alongside it: every
	// experiment outcome lands there as it completes, so a crashed or
	// partially failed sweep can be finished with -resume.
	var manifest *harness.Manifest
	if store.Mode() == resultcache.ReadWrite {
		mpath := filepath.Join(store.Dir(), harness.ManifestName)
		if *resume {
			m, stale, err := harness.LoadManifest(mpath, *quick)
			if err != nil {
				usageErr("-resume: %v", err)
			}
			if stale {
				fmt.Fprintln(os.Stderr, "ctbench: manifest is stale (different simulator version or -quick setting); re-running everything")
			} else {
				okN, failedN := m.Summary()
				fmt.Fprintf(os.Stderr, "ctbench: resuming: %d experiments previously ok, %d failed; failed and missing ones re-run\n", okN, failedN)
			}
			manifest = m
		} else {
			manifest = harness.NewManifest(mpath, *quick)
		}
	}
	// Stamp the journal with the producing run's provenance, apply the
	// batching knobs and expose its commit accounting as a metrics
	// source (all nil-safe when no manifest is in play).
	manifest.SetProvenance(harness.NewProvenance(flagLine))
	manifest.SetBatch(*manifestBatch, 0, time.Duration(*manifestFlushMS)*time.Millisecond)
	obs.RegisterSource(manifest.EmitMetrics)
	// Fold buffered journal entries into the final snapshot and drain
	// the cache's write-behind queue on every exit path; the explicit
	// calls before os.Exit below cover the paths that skip defers.
	closeSinks := func() {
		manifest.Close()
		store.Close()
	}
	defer closeSinks()
	cleanup = closeSinks

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// -parallel 0 means "use every CPU": the tables are byte-identical
	// at any worker count, so there is no reason to default to serial.
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	opts := harness.Options{Quick: *quick, Parallel: workers, Cache: store, Manifest: manifest}

	// Worker mode: lease units from the coordinator, execute, upload,
	// repeat until the sweep is done. The coordinator owns selection,
	// scale, cache and journal; this process only simulates.
	if *workerURL != "" {
		w := fleet.NewWorker(fleet.WorkerConfig{
			URL:  *workerURL,
			Opts: harness.Options{Parallel: workers},
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		fmt.Fprintf(os.Stderr, "ctbench: worker %s joining %s\n", w.ID(), *workerURL)
		n, err := w.Run(context.Background())
		if err != nil {
			fatal(fmt.Errorf("worker %s: %w (%d units completed)", w.ID(), err, n))
		}
		fmt.Printf("ctbench: worker %s done: %d units completed\n", w.ID(), n)
		return
	}

	if *benchJSON != "" {
		if err := writeBenchSnapshot(*benchJSON, selected, opts); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	builtBefore, reusedBefore := cpu.MachinesBuilt(), cpu.MachinesReset()
	var results []harness.Result
	var fleetStats *fleet.Stats
	var fleetCo *fleet.Coordinator
	if *serve != "" {
		// Coordinator mode: same sweep, same sinks, same output — the
		// execution just happens wherever workers are (or in-process,
		// if none show up).
		co, err := fleet.NewCoordinator(fleet.Config{
			Addr:     *serve,
			LeaseTTL: time.Duration(*fleetLeaseMS) * time.Millisecond,
			JoinWait: time.Duration(*fleetJoinWaitMS) * time.Millisecond,
		}, selected, opts)
		if err != nil {
			usageErr("-serve: %v", err)
		}
		fleetStats = co.Stats()
		fleetCo = co
		obs.RegisterSource(fleetStats.EmitMetrics)
		// The per-worker fleet.worker.<id>.* namespace rides the same
		// pull: registered here, not in the package, so only an actual
		// coordinator run grows its snapshot by worker count.
		obs.RegisterSource(co.EmitWorkerMetrics)
		fmt.Fprintf(os.Stderr, "ctbench: coordinating fleet on http://%s/fleet/ (join with: ctbench -worker %s; live report on /fleet)\n",
			co.Addr(), co.Addr())
		results, err = co.Run(context.Background())
		if err != nil {
			fatal(err)
		}
	} else {
		results = harness.RunAll(selected, opts)
	}
	wall := time.Since(start)
	stopProgress()
	built := cpu.MachinesBuilt() - builtBefore
	reused := cpu.MachinesReset() - reusedBefore

	cacheHits := 0
	for _, r := range results {
		fmt.Print(r.Table.Render())
		mark := ""
		if r.Cached {
			mark = ", cached"
			cacheHits++
		}
		if r.Failed() {
			mark += ", FAILED"
		}
		fmt.Printf("(%s in %v%s)\n\n", r.Experiment.ID, r.Wall.Round(time.Millisecond), mark)
	}
	traceRecs, traceReps, _ := harness.TraceStats()
	sharedReps, _ := harness.TraceShareStats()
	fanouts, decodePasses, _ := harness.TraceFanoutStats()
	fmt.Printf("total: %d experiments, %d machines (%d built, %d reused), %d cache hits, %d traces recorded, %d replayed (%d shared across configs, %d fan-out passes, %d decode passes), %v wall (parallel=%d, cache=%s, trace=%s)\n",
		len(results), built+reused, built, reused, cacheHits, traceRecs, traceReps, sharedReps, fanouts, decodePasses,
		wall.Round(time.Millisecond), workers, mode, tmode)
	var fleetReport *fleet.FleetReport
	if fleetStats != nil {
		s := fleetStats.Map()
		fmt.Printf("fleet: %d workers joined (%d lost), %d leases granted (%d expired, %d requeued), %d results accepted (%d dup, %d malformed), %d run locally, %d cached\n",
			s["worker_joins"], s["worker_losses"], s["leases_granted"], s["leases_expired"], s["leases_requeued"],
			s["results_accepted"], s["dedup_hits"], s["results_malformed"], s["local_units"], s["cached_units"])
		fr := fleetCo.FleetReport()
		fleetReport = &fr
		if len(fr.Workers) > 0 {
			fmt.Printf("fleet obs: %d metric snapshots merged (%d entries), %d spans imported, %d remote points\n",
				s["metric_snapshots"], s["metric_entries"], s["spans_imported"], s["remote_points"])
			for _, wr := range fr.Workers {
				state := "lost"
				if wr.Live {
					state = fmt.Sprintf("live, seen %dms ago", wr.LastSeenMS)
				}
				line := fmt.Sprintf("fleet worker %s: %s, proto v%d, %d units done, %d points",
					wr.ID, state, wr.Protocol, wr.UnitsDone, wr.Points)
				if wr.PointsPerSec > 0 {
					line += fmt.Sprintf(" (%.0f pts/s)", wr.PointsPerSec)
				}
				if wr.Leases > 0 {
					line += fmt.Sprintf(", %d leases (oldest %dms)", wr.Leases, wr.OldestLeaseMS)
				}
				if wr.MetricLagMS >= 0 {
					line += fmt.Sprintf(", metric lag %dms", wr.MetricLagMS)
				}
				if wr.ClockOffsetMS != 0 {
					line += fmt.Sprintf(", clock offset %+.1fms", wr.ClockOffsetMS)
				}
				if wr.Busy != "" {
					line += ", busy on " + wr.Busy
				}
				fmt.Println(line)
			}
		}
	}

	// Fault accounting: every run reports what it survived, and failures
	// flip the exit code — but only after every surviving table, profile
	// and report has been written.
	failures := harness.Failures(results)
	if retries, quarantined := harness.TraceFaultStats(); retries > 0 || quarantined > 0 {
		fmt.Fprintf(os.Stderr, "ctbench: %d transient faults retried, %d points quarantined onto the direct path\n", retries, quarantined)
		if qp := harness.QuarantinedPoints(); len(qp) > 0 {
			fmt.Fprintf(os.Stderr, "ctbench: quarantined: %s\n", strings.Join(qp, ", "))
		}
	}
	if sf := harness.TraceStaleFormatCount(); sf > 0 {
		fmt.Fprintf(os.Stderr, "ctbench: %d stale-format trace file(s) discarded and re-recorded\n", sf)
		if sp := harness.StaleFormatPoints(); len(sp) > 0 {
			fmt.Fprintf(os.Stderr, "ctbench: re-recorded: %s\n", strings.Join(sp, ", "))
		}
	}
	if q := store.Quarantined(); q > 0 {
		fmt.Fprintf(os.Stderr, "ctbench: %d corrupt result-cache entries quarantined\n", q)
	}

	// The timeline lands before any failure exit so a partially failed
	// sweep still leaves its trace behind for inspection.
	if timelineFile != nil {
		err := obs.WriteTimeline(timelineFile)
		if cerr := timelineFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("-timeline: %w", err))
		}
		fmt.Fprintf(os.Stderr, "ctbench: timeline: %d events written to %s (open in Perfetto or chrome://tracing)\n",
			obs.TimelineEventCount(), *timelineOut)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nctbench: %d point(s) FAILED (all other points completed):\n", len(failures))
		for _, pe := range failures {
			fmt.Fprintf(os.Stderr, "  %v\n", pe)
		}
		if manifest != nil {
			fmt.Fprintln(os.Stderr, "ctbench: re-run with -resume to retry only the failed experiments")
		}
	}

	if *jsonOut != "" {
		report := jsonReport{
			Created:            time.Now().UTC().Format(time.RFC3339),
			Quick:              *quick,
			Parallel:           workers,
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			WallMS:             float64(wall.Microseconds()) / 1000,
			Machines:           built + reused,
			MachinesBuilt:      built,
			MachinesReused:     reused,
			CacheMode:          mode.String(),
			CacheHits:          cacheHits,
			CacheDir:           store.Dir(),
			TraceMode:          tmode.String(),
			TraceRecords:       traceRecs,
			TraceReplays:       traceReps,
			TraceSharedReplays: sharedReps,
			TraceStaleFormat:   harness.TraceStaleFormatCount(),
			TraceFanoutReplays: fanouts,
			TraceDecodePasses:  decodePasses,
			Provenance:         harness.NewProvenance(flagLine),
			Metrics:            obs.Snapshot(),
		}
		if fleetStats != nil {
			report.Fleet = fleetStats.Map()
		}
		if fleetReport != nil {
			report.FleetWorkers = fleetReport.Workers
		}
		for _, r := range results {
			je := jsonExperiment{
				ID:       r.Experiment.ID,
				Title:    r.Experiment.Title,
				WallMS:   float64(r.Wall.Microseconds()) / 1000,
				Machines: r.Machines,
				Cached:   r.Cached,
				Failed:   r.Failed(),
				Headers:  r.Table.Headers,
				Rows:     r.Table.Rows,
				Notes:    r.Table.Notes,
				Metrics:  r.Metrics,
			}
			if r.Err != nil {
				je.Errors = append(je.Errors, r.Err.Error())
			} else if r.Table != nil {
				for _, pe := range r.Table.Failures {
					je.Errors = append(je.Errors, pe.Error())
				}
			}
			report.Experiments = append(report.Experiments, je)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if len(failures) > 0 {
		// os.Exit skips defers; flush the CPU profile and drain the
		// journal/cache sinks explicitly (no-ops when unused).
		pprof.StopCPUProfile()
		closeSinks()
		os.Exit(1)
	}
}
