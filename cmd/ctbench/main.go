// Command ctbench regenerates every table and figure of the paper's
// evaluation (plus the repository's ablations) on the simulator.
//
// Usage:
//
//	ctbench -exp all          # every experiment, paper-scale sizes
//	ctbench -exp fig7a        # one experiment
//	ctbench -exp fig2,fig9    # a comma-separated list
//	ctbench -quick            # shrunken sizes for a fast smoke run
//	ctbench -list             # list experiment IDs
//	ctbench -parallel 8       # fan experiments and sweep points out
//	                          # across 8 workers (tables byte-identical
//	                          # to the serial run)
//	ctbench -json out.json    # machine-readable results: per-experiment
//	                          # wall time, machine counts and table rows
//	ctbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ctbia/internal/cpu"
	"ctbia/internal/harness"
)

// jsonExperiment is one experiment's record in the -json report.
type jsonExperiment struct {
	ID       string     `json:"id"`
	Title    string     `json:"title"`
	WallMS   float64    `json:"wall_ms"`
	Machines uint64     `json:"machines"`
	Headers  []string   `json:"headers,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Notes    []string   `json:"notes,omitempty"`
}

// jsonReport is the -json file layout. Per-experiment machine counts
// are exact in serial runs; in parallel runs the attribution windows
// overlap, but the run-level total stays exact — trajectory tooling
// should trend the totals and the per-experiment wall times.
type jsonReport struct {
	Created     string           `json:"created"`
	Quick       bool             `json:"quick"`
	Parallel    int              `json:"parallel"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	WallMS      float64          `json:"wall_ms"`
	Machines    uint64           `json:"machines"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	parallel := flag.Int("parallel", 1, "worker count for experiments and sweep points (<=1: serial)")
	jsonOut := flag.String("json", "", "write a machine-readable result file (wall times, machine counts, table rows)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := harness.Options{Quick: *quick, Parallel: *parallel}
	start := time.Now()
	machinesBefore := cpu.MachinesBuilt()
	results := harness.RunAll(selected, opts)
	wall := time.Since(start)
	machines := cpu.MachinesBuilt() - machinesBefore

	for _, r := range results {
		fmt.Print(r.Table.Render())
		fmt.Printf("(%s in %v)\n\n", r.Experiment.ID, r.Wall.Round(time.Millisecond))
	}
	fmt.Printf("total: %d experiments, %d machines, %v wall (parallel=%d)\n",
		len(results), machines, wall.Round(time.Millisecond), *parallel)

	if *jsonOut != "" {
		report := jsonReport{
			Created:    time.Now().UTC().Format(time.RFC3339),
			Quick:      *quick,
			Parallel:   *parallel,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			WallMS:     float64(wall.Microseconds()) / 1000,
			Machines:   machines,
		}
		for _, r := range results {
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID:       r.Experiment.ID,
				Title:    r.Experiment.Title,
				WallMS:   float64(r.Wall.Microseconds()) / 1000,
				Machines: r.Machines,
				Headers:  r.Table.Headers,
				Rows:     r.Table.Rows,
				Notes:    r.Table.Notes,
			})
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ctbench: ", err)
			os.Exit(1)
		}
		f.Close()
	}
}
