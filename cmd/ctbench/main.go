// Command ctbench regenerates every table and figure of the paper's
// evaluation (plus the repository's ablations) on the simulator.
//
// Usage:
//
//	ctbench -exp all          # every experiment, paper-scale sizes
//	ctbench -exp fig7a        # one experiment
//	ctbench -exp fig2,fig9    # a comma-separated list
//	ctbench -quick            # shrunken sizes for a fast smoke run
//	ctbench -list             # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ctbia/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	quick := flag.Bool("quick", false, "use shrunken problem sizes")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := harness.Options{Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		table := e.Run(opts)
		fmt.Print(table.Render())
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
