// Command ctsec runs the security evaluation: the paper's Fig. 10
// per-set access-count test plus this repository's stronger full-trace
// equality check, across every workload and protected strategy. It
// exits non-zero if any protected configuration leaks.
package main

import (
	"flag"
	"fmt"
	"os"

	"ctbia/internal/attacker"
	"ctbia/internal/ct"
	"ctbia/internal/harness"
	"ctbia/internal/memp"
	"ctbia/internal/obs"
	"ctbia/internal/workloads"
)

func traceFor(w workloads.Workload, strat ct.Strategy, biaLevel int, p workloads.Params) string {
	m := harness.MachineFor(biaLevel)
	tr := attacker.NewTrace(m.Hier)
	got := w.Run(m, strat, p)
	if want := w.Reference(p); got != want {
		fmt.Fprintf(os.Stderr, "FUNCTIONAL BUG: %s/%s checksum %#x want %#x\n", w.Name(), strat.Name(), got, want)
		os.Exit(1)
	}
	if obs.Enabled() {
		m.EmitMetrics(obs.Add)
	}
	return tr.Key()
}

func main() {
	samples := flag.Int("samples", 5, "number of random secrets per configuration")
	size := flag.Int("size", 1000, "workload size (dijkstra uses size/8 rounded to 16)")
	metrics := flag.Bool("metrics", false, "print the observability metrics snapshot as JSON after the evaluation")
	listen := flag.String("listen", "", "serve live introspection on this address during the run (/metrics, /metrics.json, /debug/pprof)")
	flag.Parse()

	// Flag misuse is exit 2, before any simulation starts.
	if *samples < 1 {
		fmt.Fprintf(os.Stderr, "ctsec: -samples %d: need at least one secret per configuration\n", *samples)
		os.Exit(2)
	}
	if *size < 1 {
		fmt.Fprintf(os.Stderr, "ctsec: -size %d: workload size must be positive\n", *size)
		os.Exit(2)
	}
	if *metrics || *listen != "" {
		obs.Arm()
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctsec: -listen: %v\n", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ctsec: live introspection on http://%s/metrics\n", srv.Addr())
	}

	fmt.Println("== Fig. 10: per-cache-set access counts (histogram) ==")
	fig10, _ := harness.ByID("fig10")
	fmt.Print(fig10.Run(harness.Options{}).Render())
	fmt.Println()

	fmt.Println("== full-trace equality across secrets (stronger than Fig. 10) ==")
	strategies := []struct {
		s        ct.Strategy
		biaLevel int
	}{
		{ct.Linear{}, 0},
		{ct.LinearVec{}, 0},
		{ct.BIA{}, 1},
		{ct.BIA{}, 2},
	}
	leaks := 0
	for _, w := range workloads.All() {
		sz := *size
		if w.Name() == "dijkstra" {
			sz = ((*size / 8) / 16) * 16
			if sz < 16 {
				sz = 16
			}
		}
		for _, st := range strategies {
			base := ""
			leak := false
			for s := 0; s < *samples; s++ {
				p := workloads.Params{Size: sz, Seed: int64(1000 + 7*s), Ops: 8}
				key := traceFor(w, st.s, st.biaLevel, p)
				if s == 0 {
					base = key
				} else if key != base {
					leak = true
				}
			}
			verdict := "identical traces — no leak"
			if leak {
				verdict = "TRACES DIFFER — LEAK"
				leaks++
			}
			fmt.Printf("%-13s %-8s (biaL%d): %s\n", w.Name(), st.s.Name(), st.biaLevel, verdict)
		}
		// Sanity: the insecure version must visibly leak.
		a := traceFor(w, ct.Direct{}, 0, workloads.Params{Size: sz, Seed: 1, Ops: 8})
		b := traceFor(w, ct.Direct{}, 0, workloads.Params{Size: sz, Seed: 2, Ops: 8})
		if a == b {
			fmt.Printf("%-13s insecure: WARNING — traces did not differ (weak test?)\n", w.Name())
		} else {
			fmt.Printf("%-13s insecure: traces differ with the secret (expected)\n", w.Name())
		}
	}
	// Prime+Probe demo summary.
	fmt.Println("\n== Prime+Probe against one secret-dependent access ==")
	m := harness.MachineFor(0)
	victim := m.Alloc.Alloc("victim", 4096)
	pp := attacker.NewPrimeProbe(m.Hier, 1, m.Alloc)
	pp.Prime()
	secretLine := 21
	victimAddr := victim.Base + memp.Addr(secretLine*memp.LineSize)
	m.Hier.Access(victimAddr, 0)
	hot := pp.HotSets(pp.Probe())
	fmt.Printf("victim touched line %d (set %d); attacker sees hot sets %v\n",
		secretLine, pp.SetOfVictim(victimAddr), hot)

	// The metrics dump lands before the verdict/exit so a leaking run
	// still reports what the simulated layers did.
	if *metrics {
		fmt.Println("\n== observability metrics ==")
		if err := obs.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ctsec: metrics: %v\n", err)
		}
	}

	if leaks > 0 {
		fmt.Printf("\nRESULT: %d leaking configurations\n", leaks)
		os.Exit(1)
	}
	fmt.Println("\nRESULT: all protected configurations leak-free")
}
