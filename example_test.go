package ctbia_test

import (
	"fmt"

	"ctbia"
)

// The canonical use: a lookup table whose index is secret, protected by
// the paper's BIA-assisted algorithms.
func Example() {
	sys := ctbia.NewDefaultSystem()
	lut := sys.NewArray32("lut", 4096, ctbia.BIAAssisted)
	for i := 0; i < lut.Len(); i++ {
		lut.Set(i, uint64(3*i)) // untimed initialization
	}
	sys.Warm(lut)

	secretIdx := 1234
	v := lut.Load(secretIdx) // secret-independent cache footprint
	fmt.Println(v)
	// Output: 3702
}

// Comparing the mitigations on one access shows the paper's trade-off:
// software CT touches the whole dataflow linearization set, the BIA
// touches one probe per page.
func ExampleSystem_NewArray32() {
	for _, mi := range []ctbia.Mitigation{ctbia.SoftwareCT, ctbia.BIAAssisted} {
		sys := ctbia.NewDefaultSystem()
		lut := sys.NewArray32("lut", 4096, mi) // 256-line DS, 4 pages
		sys.Warm(lut)
		lut.Load(0) // converge the BIA bitmap
		sys.ResetStats()
		lut.Load(1234)
		fmt.Printf("%s: %d L1d refs\n", mi, sys.Stats().L1DRefs)
	}
	// Output:
	// software-ct: 256 L1d refs
	// bia: 4 L1d refs
}

// The Fig. 10 security check: per-cache-set access counts must not
// depend on the secret.
func ExampleTelemetry() {
	countsFor := func(secret int) []uint64 {
		sys := ctbia.NewDefaultSystem()
		tel := sys.NewTelemetry(1)
		lut := sys.NewArray32("lut", 2048, ctbia.BIAAssisted)
		sys.Warm(lut)
		tel.Reset()
		lut.Store(secret, 7)
		return tel.Counts()
	}
	fmt.Println(ctbia.EqualCounts(countsFor(3), countsFor(2000)))
	// Output: true
}

// A Prime+Probe attacker recovers the victim's cache set from an
// unprotected access.
func ExamplePrimeProbe() {
	sys := ctbia.NewDefaultSystem()
	victim := sys.NewArray32("victim", 4096, ctbia.Insecure)
	pp := sys.NewPrimeProbe(1)

	pp.Prime()
	victim.Load(1000) // the victim's secret-dependent access
	hot := pp.HotSets(pp.Probe())

	fmt.Println(len(hot) == 1 && hot[0] == pp.SetOfVictim(victim.Addr(1000)))
	// Output: true
}

// Experiments regenerate the paper's tables programmatically.
func ExampleExperiment() {
	out, err := ctbia.Experiment("table2", true)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out) > 0)
	// Output: true
}
