package ctbia

import (
	"fmt"

	"ctbia/internal/cpu"
	"ctbia/internal/ct"
	"ctbia/internal/memp"
)

// Array is a protected array in simulated memory: element accesses with
// secret indices go through the array's mitigation, leaving a
// secret-independent cache footprint (except for Insecure, which is the
// leaky baseline). The whole array is the dataflow linearization set of
// each access — the common case for lookup tables, histogram bins and
// the paper's benchmark programs.
type Array struct {
	sys      *System
	region   memp.Region
	ds       *ct.LinSet
	strat    ct.Strategy
	mi       Mitigation
	elemSize int
	length   int
}

// newArray allocates and wires a protected array.
func (s *System) newArray(name string, length, elemSize int, mi Mitigation, threshold int) *Array {
	if length <= 0 {
		panic("ctbia: array length must be positive")
	}
	reg := s.m.Alloc.Alloc(name, uint64(length*elemSize))
	return &Array{
		sys:      s,
		region:   reg,
		ds:       ct.FromRegion(reg),
		strat:    s.strategyFor(mi, threshold),
		mi:       mi,
		elemSize: elemSize,
		length:   length,
	}
}

// NewArray32 allocates a protected array of length 32-bit elements.
func (s *System) NewArray32(name string, length int, mi Mitigation) *Array {
	return s.newArray(name, length, 4, mi, 0)
}

// NewArray64 allocates a protected array of length 64-bit elements.
func (s *System) NewArray64(name string, length int, mi Mitigation) *Array {
	return s.newArray(name, length, 8, mi, 0)
}

// NewArray8 allocates a protected byte array.
func (s *System) NewArray8(name string, length int, mi Mitigation) *Array {
	return s.newArray(name, length, 1, mi, 0)
}

// NewArray32Threshold is NewArray32 with the Sec. 6.5 fetchset-size
// threshold enabled for BIAAssisted arrays: page spans whose fetchset
// exceeds threshold lines are serviced straight from DRAM.
func (s *System) NewArray32Threshold(name string, length int, threshold int) *Array {
	return s.newArray(name, length, 4, BIAAssisted, threshold)
}

// Len returns the element count.
func (a *Array) Len() int { return a.length }

// Bytes returns the array's size in bytes.
func (a *Array) Bytes() uint64 { return a.region.Size }

// DSLines returns the dataflow-linearization-set size in cache lines.
func (a *Array) DSLines() int { return a.ds.NumLines() }

// Mitigation returns the array's configured mitigation.
func (a *Array) Mitigation() Mitigation { return a.mi }

// Addr returns the simulated physical address of element i.
func (a *Array) Addr(i int) uint64 { return uint64(a.region.Base) + uint64(i*a.elemSize) }

func (a *Array) addr(i int) memp.Addr {
	if i < 0 || i >= a.length {
		panic(fmt.Sprintf("ctbia: index %d out of range [0,%d) in array %q", i, a.length, a.region.Name))
	}
	return a.region.Base + memp.Addr(i*a.elemSize)
}

func (a *Array) width() cpu.Width {
	switch a.elemSize {
	case 1:
		return cpu.W8
	case 4:
		return cpu.W32
	default:
		return cpu.W64
	}
}

// Load reads element i with the array's mitigation. The index may be
// secret: the cache footprint does not depend on it.
func (a *Array) Load(i int) uint64 {
	return a.strat.Load(a.sys.m, a.ds, a.addr(i), a.width())
}

// Store writes element i with the array's mitigation.
func (a *Array) Store(i int, v uint64) {
	a.strat.Store(a.sys.m, a.ds, a.addr(i), v, a.width())
}

// LoadLines performs a protected bulk gather of nLines consecutive
// cache lines starting at element first (which must be line-aligned:
// first*elemSize a multiple of 64). Used for oblivious row fetches.
func (a *Array) LoadLines(first, nLines int) []byte {
	return a.strat.LoadBlock(a.sys.m, a.ds, a.addr(first), nLines)
}

// Set writes element i directly (setup/initialization: no timing, no
// cache effects — like loading the program's inputs from disk).
func (a *Array) Set(i int, v uint64) {
	addr := a.addr(i)
	switch a.elemSize {
	case 1:
		a.sys.m.Mem.Write8(addr, byte(v))
	case 4:
		a.sys.m.Mem.Write32(addr, uint32(v))
	default:
		a.sys.m.Mem.Write64(addr, v)
	}
}

// Peek reads element i directly (inspection: no timing, no cache
// effects).
func (a *Array) Peek(i int) uint64 {
	addr := a.addr(i)
	switch a.elemSize {
	case 1:
		return uint64(a.sys.m.Mem.Read8(addr))
	case 4:
		return uint64(a.sys.m.Mem.Read32(addr))
	default:
		return a.sys.m.Mem.Read64(addr)
	}
}

// Select returns a if pred else b in constant time, charging the cmov
// to the machine — the control-flow-linearization companion to the
// protected arrays.
func (s *System) Select(pred bool, a, b uint64) uint64 {
	return ct.Select(s.m, pred, a, b)
}

// Select32 is Select for 32-bit values.
func (s *System) Select32(pred bool, a, b uint32) uint32 {
	return ct.Select32(s.m, pred, a, b)
}
